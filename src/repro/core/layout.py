"""Bit-level packing of MX and MX+ blocks (Figures 6-7).

MX stores ``k`` element codes plus one E8M0 scale byte per block. MX+ adds
one sideband byte per block: 5 bits of BM index + 3 reserved bits (MX++
stores the NBM scale delta there). All elements keep the same bit width, so
MX+ never causes unaligned element access — the sideband lives in its own
(possibly non-contiguous) stream, exactly as the paper describes.

These functions are the storage ground truth for the overhead numbers
quoted in the paper (MXFP4: 4.25 -> MXFP4+: 4.5 average bits/element) and
give byte-exact round-trips for testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .elem import FloatCodec, round_half_even
from .mx import MXEncoded, MXFormat
from .mxplus import MXPlusEncoded, MXPlusFormat
from .scale import ZERO_BLOCK_SENTINEL, decode_e8m0, encode_e8m0

__all__ = [
    "pack_bits",
    "unpack_bits",
    "PackedMX",
    "pack_mx",
    "unpack_mx",
    "PackedMXPlus",
    "pack_mxplus",
    "unpack_mxplus",
]


def pack_bits(codes: np.ndarray, bits: int) -> bytes:
    """Pack an array of ``bits``-wide codes into a dense byte string (MSB first)."""
    codes = np.asarray(codes, dtype=np.uint32).ravel()
    expanded = np.zeros((codes.size, bits), dtype=np.uint8)
    for b in range(bits):
        expanded[:, b] = (codes >> (bits - 1 - b)) & 1
    return np.packbits(expanded.ravel()).tobytes()


def unpack_bits(buf: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns ``count`` codes as uint32."""
    raw = np.unpackbits(np.frombuffer(buf, dtype=np.uint8), count=count * bits)
    raw = raw.reshape(count, bits).astype(np.uint32)
    out = np.zeros(count, dtype=np.uint32)
    for b in range(bits):
        out |= raw[:, b] << (bits - 1 - b)
    return out


@dataclass
class PackedMX:
    elements: bytes
    scales: bytes
    nblocks: int
    block_shape: tuple  # shape of the (..., nblocks) scale array
    blocked: object

    def total_bytes(self) -> int:
        return len(self.elements) + len(self.scales)


def pack_mx(fmt: MXFormat, enc: MXEncoded) -> PackedMX:
    """Pack an MX encoding to bytes: element codes + E8M0 scale bytes."""
    codes = fmt.elem.encode_bits(enc.elem_values)
    return PackedMX(
        elements=pack_bits(codes, fmt.elem.bits),
        scales=encode_e8m0(enc.shared_exp).tobytes(),
        nblocks=int(np.prod(enc.shared_exp.shape)),
        block_shape=enc.shared_exp.shape,
        blocked=enc.blocked,
    )


def unpack_mx(fmt: MXFormat, packed: PackedMX) -> MXEncoded:
    k = fmt.block_size
    codes = unpack_bits(packed.elements, fmt.elem.bits, packed.nblocks * k)
    values = fmt.elem.decode_bits(codes).reshape(packed.block_shape + (k,))
    scales = decode_e8m0(np.frombuffer(packed.scales, dtype=np.uint8))
    return MXEncoded(
        shared_exp=scales.reshape(packed.block_shape).astype(np.int32),
        elem_values=values,
        blocked=packed.blocked,
    )


@dataclass
class PackedMXPlus:
    elements: bytes
    scales: bytes
    sideband: bytes  # one byte per block: (bm_index << 3) | reserved
    nblocks: int
    block_shape: tuple
    blocked: object

    def total_bytes(self) -> int:
        return len(self.elements) + len(self.scales) + len(self.sideband)


def _bm_code(fmt: MXPlusFormat, bm_scaled: np.ndarray) -> np.ndarray:
    """Bit code of a BM element: sign bit + ``bm_mbits`` fraction bits."""
    sign = (bm_scaled < 0).astype(np.uint32)
    anchor = 2.0**fmt.elem.emax
    steps = 1 << fmt.bm_mbits
    frac = round_half_even((np.abs(bm_scaled) / anchor - 1.0) * steps)
    frac = np.clip(frac, 0, steps - 1).astype(np.uint32)
    return (sign << fmt.bm_mbits) | frac


def _bm_decode(fmt: MXPlusFormat, codes: np.ndarray) -> np.ndarray:
    sign = np.where((codes >> fmt.bm_mbits) & 1 == 1, -1.0, 1.0)
    steps = 1 << fmt.bm_mbits
    frac = (codes & (steps - 1)).astype(np.float64)
    return sign * 2.0**fmt.elem.emax * (1.0 + frac / steps)


def pack_mxplus(fmt: MXPlusFormat, enc: MXPlusEncoded) -> PackedMXPlus:
    """Pack an MX+/MX++ encoding: elements, scales, and the sideband byte."""
    k = fmt.block_size
    is_bm = np.arange(k, dtype=np.int32) == enc.bm_index[..., None]
    # NBM codes use the standard element encoding; the BM slot is overwritten
    # with the extended-mantissa code at the same bit width (Fig. 6).
    nbm_for_codes = np.where(is_bm, 0.0, enc.elem_values)
    codes = fmt.elem.encode_bits(nbm_for_codes)
    bm_scaled = np.take_along_axis(
        enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
    )[..., 0]
    flush = enc.shared_exp == ZERO_BLOCK_SENTINEL
    bm_codes = np.where(flush, 0, _bm_code(fmt, np.where(flush, 2.0**fmt.elem.emax, bm_scaled)))
    np.put_along_axis(
        codes, enc.bm_index[..., None].astype(np.int64), bm_codes[..., None].astype(np.uint32), axis=-1
    )

    sideband = ((enc.bm_index.astype(np.uint8) & 0x1F) << 3) | (
        enc.reserved.astype(np.uint8) & 0x7
    )
    return PackedMXPlus(
        elements=pack_bits(codes, fmt.elem.bits),
        scales=encode_e8m0(enc.shared_exp, mx_plus=True).tobytes(),
        sideband=sideband.tobytes(),
        nblocks=int(np.prod(enc.shared_exp.shape)),
        block_shape=enc.shared_exp.shape,
        blocked=packed_blocked(enc),
    )


def packed_blocked(enc: MXPlusEncoded):
    return enc.blocked


def unpack_mxplus(fmt: MXPlusFormat, packed: PackedMXPlus) -> MXPlusEncoded:
    k = fmt.block_size
    codes = unpack_bits(packed.elements, fmt.elem.bits, packed.nblocks * k).reshape(
        packed.block_shape + (k,)
    )
    sideband = np.frombuffer(packed.sideband, dtype=np.uint8).reshape(packed.block_shape)
    bm_index = (sideband >> 3).astype(np.int32)
    reserved = (sideband & 0x7).astype(np.int32)

    values = fmt.elem.decode_bits(codes)
    bm_codes = np.take_along_axis(codes, bm_index[..., None].astype(np.int64), axis=-1)[..., 0]
    bm_vals = _bm_decode(fmt, bm_codes)
    np.put_along_axis(values, bm_index[..., None].astype(np.int64), bm_vals[..., None], axis=-1)

    shared_exp = decode_e8m0(
        np.frombuffer(packed.scales, dtype=np.uint8), mx_plus=True
    ).reshape(packed.block_shape).astype(np.int32)
    flush = shared_exp == ZERO_BLOCK_SENTINEL
    values = np.where(flush[..., None], 0.0, values)
    return MXPlusEncoded(
        shared_exp=shared_exp,
        elem_values=values,
        bm_index=bm_index,
        reserved=reserved,
        nbm_shared_exp=np.where(
            flush, ZERO_BLOCK_SENTINEL, shared_exp - reserved
        ).astype(np.int32),
        blocked=packed.blocked,
    )
