"""Table 4: matmul time with BF16 activations and MXFP4+/MXFP4++ weights
(conversion-before-compute on a non-MX GPU), normalized to MXFP4."""

from _util import print_table, run_once, save_result

from repro.gpu.convert import table4_row

M_VALUES = [8, 16, 32, 1024, 2048, 4096]


def test_tab04(benchmark):
    def run():
        return {
            "mxfp4+": table4_row(M_VALUES, "mxfp4+"),
            "mxfp4++": table4_row(M_VALUES, "mxfp4++"),
        }

    table = run_once(benchmark, run)
    save_result("tab04_conversion", table)
    print_table("Table 4: normalized conversion matmul time", table)

    for variant, row in table.items():
        small = row[8]
        large = row[4096]
        # Overhead is visible at small M (paper 1.07-1.10)...
        assert 1.03 < small < 1.15
        # ...and amortized at large M (paper 1.01-1.05).
        assert large < small
        assert large < 1.06
    # MX++ conversion costs slightly more than MX+ everywhere.
    assert all(table["mxfp4++"][m] >= table["mxfp4+"][m] for m in M_VALUES)
