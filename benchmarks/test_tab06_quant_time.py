"""Table 6: measured quantization time vs input length, normalized to
MXFP4 — on this library's own vectorized encoders."""

from _util import print_table, run_once, save_result

from repro.gpu.quanttime import quantization_time_table

TOKENS = [32, 128, 512, 1024, 2048]


def test_tab06(benchmark):
    def run():
        # 5 interleaved rounds, min per format: enough samples that one
        # load spike cannot skew a single format's normalized ratio.
        return quantization_time_table(TOKENS, dim=1024, repeats=5)

    table = run_once(benchmark, run)
    print_table("Table 6: normalized quantization time", table)

    # Assert before save_result so a failing (e.g. load-skewed) run never
    # overwrites the committed artifact.
    for tokens, row in table.items():
        # MXFP4+ costs about the same as MXFP4 (the BM is found during
        # shared-scale computation anyway) — paper: 1.00-1.05x; ours is a
        # one-extra-vector-op numpy kernel, same ballpark.
        assert row["mxfp4+"] < 1.7  # loose: wall-clock jitter on shared CPUs
        # MXFP4++ pays for the second-max pass. The paper's fused CUDA
        # kernel lands at 1.04-1.15x; our numpy encoder re-quantizes the
        # NBMs in a second full pass, so the ratio is larger (~2x) but the
        # ordering and trend (amortizing with length) are the same.
        assert row["mxfp4+"] <= row["mxfp4++"] < 3.5

    save_result("tab06_quant_time", table)
