"""Unit tests for the MXINT(+) and NVFP4(+) extensions (Section 8.2)."""

import numpy as np
import pytest

from repro.core.elem import E4M3
from repro.core.mx import MXINT8
from repro.core.mxint_plus import MXINT4, MXINT4Plus, MXINT8PlusFormat, MXIntFormat
from repro.core.nvfp4 import NVFP4, NVFP4Plus


class TestMXInt:
    def test_mxint8_matches_mx_module(self):
        # The generic MXIntFormat and the MXFormat-with-IntCodec route must
        # agree (both implement the OCP MXINT8).
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 64)) * 4
        np.testing.assert_allclose(MXIntFormat(8)(x), MXINT8()(x))

    def test_mxint8_resolution(self):
        # One sign + one integer + six fraction bits: ulp of a block with
        # max 1.0 is 2^-6.
        x = np.zeros(32)
        x[0] = 1.0
        x[1] = 3 * 2.0**-7  # 1.5 ulp -> rounds to even (2^-5... no: 2*2^-6)
        q = MXIntFormat(8)(x)
        assert q[1] == pytest.approx(2 * 2.0**-6)

    def test_mxint4_resolution(self):
        x = np.zeros(32)
        x[0] = 1.0
        q = MXIntFormat(4)(x)
        assert q[0] == pytest.approx(1.0)
        # max code 7 -> max representable 7/4 = 1.75 at scale 1
        x2 = np.zeros(32)
        x2[0] = 1.9
        q2 = MXIntFormat(4)(x2)
        assert q2[0] == pytest.approx(1.75)

    @pytest.mark.parametrize(
        "base,plus",
        [(MXINT4, MXINT4Plus), (MXINT8, MXINT8PlusFormat)],
        ids=["int4", "int8"],
    )
    def test_plus_bm_error_never_worse(self, base, plus):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((128, 32)) * np.exp(rng.uniform(-3, 3, (128, 1)))
        qb, qp = base()(x), plus()(x)
        bm = np.argmax(np.abs(x), axis=-1)
        rows = np.arange(128)
        assert np.all(
            np.abs(x[rows, bm] - qp[rows, bm]) <= np.abs(x[rows, bm] - qb[rows, bm]) + 1e-12
        )

    def test_int8_plus_gain_is_marginal(self):
        # Table 10: going from 6 to 7 BM fraction bits barely helps.
        rng = np.random.default_rng(2)
        x = rng.standard_normal((256, 32))
        e8 = np.mean((x - MXINT8()(x)) ** 2)
        e8p = np.mean((x - MXINT8PlusFormat()(x)) ** 2)
        assert e8p <= e8
        assert (e8 - e8p) / e8 < 0.05

    def test_int4_plus_gain_is_visible(self):
        # Table 10: MXINT4 benefits like MXFP4+ does.
        rng = np.random.default_rng(3)
        x = rng.standard_normal((256, 32))
        x[np.abs(x) > 2.5] *= 20
        e4 = np.mean((x - MXINT4()(x)) ** 2)
        e4p = np.mean((x - MXINT4Plus()(x)) ** 2)
        assert (e4 - e4p) / e4 > 0.05

    def test_zero_block(self):
        for fmt in (MXINT4(), MXINT4Plus(), MXINT8PlusFormat()):
            np.testing.assert_array_equal(fmt(np.zeros((2, 32))), 0.0)


class TestNVFP4:
    def test_block_size_16(self):
        assert NVFP4().block_size == 16

    def test_scale_is_e4m3(self):
        # NVFP4 scale = amax/6 rounded to E4M3; verify via reconstruction.
        x = np.zeros(16)
        x[0] = 12.0  # scale = 2.0 exactly (E4M3-representable)
        q = NVFP4()(x)
        assert q[0] == pytest.approx(12.0)

    def test_non_pow2_scale(self):
        # amax = 9 -> scale 1.5 (E4M3-representable), BM -> 9.0 exactly.
        # MXFP4 with its pow2 scale cannot represent 9 (grid step 2 there).
        from repro.core.mx import MXFP4

        x = np.zeros(16)
        x[0] = 9.0
        assert NVFP4()(x)[0] == pytest.approx(9.0)
        assert MXFP4()(np.pad(x, (0, 16)))[0] != pytest.approx(9.0)

    def test_plus_never_worse(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((256, 16))
        x[rng.random((256, 16)) < 0.05] *= 30
        eb = np.mean((x - NVFP4()(x)) ** 2)
        ep = np.mean((x - NVFP4Plus()(x)) ** 2)
        assert ep <= eb + 1e-15

    def test_plus_bm_extended(self):
        # BM 6.36: raw scale 1.06 rounds *down* to E4M3 1.0, so the scaled
        # BM lands at 6.36. Plain E2M1 snaps it to 6.0 (error 0.36); the
        # extended BM grid (step 0.5) reaches 6.5 (error 0.14).
        x = np.zeros(16)
        x[0] = 6.36
        x[1] = 1.0  # keep the block from being BM-only
        qb = NVFP4()(x)
        qp = NVFP4Plus()(x)
        assert qb[0] == pytest.approx(6.0)
        assert qp[0] == pytest.approx(6.5)
        assert abs(qp[0] - 6.36) < abs(qb[0] - 6.36)

    def test_fallback_when_bm_below_emax(self):
        # If the E4M3 scale rounds up enough that the scaled BM drops below
        # 2^emax, NVFP4+ falls back to the plain encoding for the block.
        x = np.zeros(16)
        x[0] = 6.5  # scale = e4m3(6.5/6 = 1.0833) -> 1.125; scaled 5.78 < ...
        qb = NVFP4()(x)
        qp = NVFP4Plus()(x)
        # either equal (fallback) or better; never worse
        assert abs(qp[0] - 6.5) <= abs(qb[0] - 6.5)

    def test_zero_block(self):
        np.testing.assert_array_equal(NVFP4()(np.zeros((2, 16))), 0.0)
        np.testing.assert_array_equal(NVFP4Plus()(np.zeros((2, 16))), 0.0)

    def test_bits_per_element(self):
        assert NVFP4().bits_per_element() == pytest.approx(4.5)
        assert NVFP4Plus().bits_per_element() == pytest.approx(4.75)

    def test_tiny_block_scale_floor(self):
        # Tiny but nonzero blocks use the min positive E4M3 scale rather
        # than zeroing everything.
        x = np.full((1, 16), 2.0**-12)
        q = NVFP4()(x)
        assert np.all(np.isfinite(q))
