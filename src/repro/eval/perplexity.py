"""Perplexity evaluation under quantized inference (Tables 3, 7, 8, 10)."""

from __future__ import annotations

import numpy as np

from ..data.corpus import Corpus
from ..nn.quantize import QuantContext, as_context
from ..nn.transformer import TransformerLM

__all__ = ["perplexity", "perplexity_table"]


def perplexity(
    model: TransformerLM,
    corpus: Corpus,
    qc: QuantContext,
    batch: int = 16,
    seq_len: int = 128,
) -> float:
    """Held-out perplexity of ``model`` on ``corpus`` under config ``qc``
    (a context, :class:`repro.serve.QuantRecipe`, or recipe name)."""
    tokens = corpus.val_batch(batch, seq_len)
    return model.perplexity(tokens, as_context(qc))


def perplexity_table(
    model: TransformerLM,
    corpus: Corpus,
    recipes: list,
    batch: int = 16,
    seq_len: int = 128,
) -> dict[str, float]:
    """Perplexity per recipe (names or :class:`repro.serve.QuantRecipe`)."""
    out: dict[str, float] = {}
    for entry in recipes:
        qc = as_context(entry)
        key = entry if isinstance(entry, str) else qc.name
        out[key] = perplexity(model, corpus, qc, batch, seq_len)
    return out
