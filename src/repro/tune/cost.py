"""Serving-cost model: one throughput/footprint score per recipe.

A candidate recipe's serving cost has two coupled components, and this
module composes exactly the two primitives the serving stack already
trusts:

* **step time** — :func:`repro.gpu.inference.step_time`, the roofline
  matmul model behind ``ServingEngine``/``ServingCluster`` (mixed-precision
  ``layer_overrides`` included);
* **KV footprint** — :func:`repro.serve.kvcache.kv_token_bytes`, the
  bytes/token the paged KV allocator charges per resident token.

They meet in the continuous-batching steady state: a page budget divided
by the recipe's KV bytes/token bounds how many requests sit in one decode
batch, and the decode step time for that batch sets the token rate. The
resulting ``tokens_per_s`` is the scalar score the searchers in
:mod:`repro.tune.search` maximize — a recipe with a leaner KV format earns
throughput by *fitting more concurrent requests*, which is the paper's
serving argument for microscaling formats in the first place.

>>> from repro.models.zoo import ARCHS
>>> cost = CostModel(ARCHS["llama-2-13b"])
>>> mx4, bf16 = cost.evaluate("mxfp4"), cost.evaluate("bf16")
>>> mx4.concurrency > 3 * bf16.concurrency  # 4.25-bit KV vs 16-bit KV
True
>>> mx4.tokens_per_s > bf16.tokens_per_s
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gpu.inference import step_time
from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from ..serve.kvcache import KVTransfer, kv_token_bytes
from ..serve.recipe import QuantRecipe

__all__ = ["RecipeCost", "CostModel"]


@dataclass(frozen=True)
class RecipeCost:
    """Evaluated serving cost of one recipe under a :class:`CostModel`."""

    recipe_name: str
    tokens_per_s: float  # steady-state decode throughput (the score)
    concurrency: int  # requests resident under the page budget
    kv_bytes_per_token: float
    decode_step_s: float  # one decode iteration at full concurrency
    prefill_s: float  # one full-batch prefill (amortized into the score)
    disaggregated: bool = False  # priced as a decode pool behind a KV link
    transfer_bytes_per_request: float = 0.0  # migrated KV per admission
    transfer_s_per_request: float = 0.0  # link time per migration

    @property
    def score(self) -> float:
        """The single scalar the searchers maximize (higher is better)."""
        return self.tokens_per_s

    def to_dict(self) -> dict:
        """JSON-friendly view; migration keys appear only when priced
        disaggregated, so unified artifacts keep their historical shape."""
        out = {
            "recipe": self.recipe_name,
            "tokens_per_s": self.tokens_per_s,
            "concurrency": self.concurrency,
            "kv_bytes_per_token": self.kv_bytes_per_token,
            "decode_step_ms": self.decode_step_s * 1e3,
            "prefill_ms": self.prefill_s * 1e3,
        }
        if self.disaggregated:
            out["disaggregated"] = True
            out["transfer_bytes_per_request"] = self.transfer_bytes_per_request
            out["transfer_ms_per_request"] = self.transfer_s_per_request * 1e3
        return out


@dataclass(frozen=True)
class CostModel:
    """Steady-state serving scenario a recipe is priced against.

    ``page_budget_bytes`` of KV memory serve requests of ``prompt_len``
    prompt tokens generating ``output_len`` tokens each; concurrency is
    whatever the recipe's KV format fits (capped by ``max_batch``), decode
    runs at the mid-generation context length, and each output token
    amortizes its share of the prefill.

    ``scheduler`` names the batch-composition policy of the serving core
    the price models (see :func:`repro.serve.sched.available_schedulers`):

    * ``"prefill-first"`` (default) and ``"decode-priority"`` amortize a
      dedicated full-batch prefill over the output tokens — the classic
      alternating steady state (identical formulas: at steady state both
      policies run the same dedicated-step mix);
    * ``"chunked-prefill"`` prices the Sarathi-style steady state: every
      decode step also carries the batch's incoming prompt rows as a
      tagged chunk, priced by ``step_time``'s mixed-batch path (chunk and
      decode attention kernels separate).

    ``disaggregated=True`` prices the **decode pool of a disaggregated
    deployment** instead: prefill runs on a separate pool, so no prefill
    (or chunk) time is amortized into the decode rate — but every
    admission first migrates its KV (``prompt_len + 1`` tokens at the
    recipe's exact bytes/token) over ``transfer`` (a
    :class:`~repro.serve.kvcache.KVTransfer`; PCIe 5-class default), and
    the link serializes: in steady state one request completes — and one
    migrates in — per ``output_len`` generated tokens, so throughput is
    the *minimum* of the compute rate and the interconnect's sustainable
    admission rate. A leaner KV format therefore wins twice here: more
    concurrency per page budget *and* fewer bytes per migration.
    """

    arch: ArchSpec
    spec: GPUSpec = RTX5090
    page_budget_bytes: float = float(4 << 30)
    prompt_len: int = 512
    output_len: int = 128
    max_batch: int = 256
    scheduler: str = "prefill-first"
    disaggregated: bool = False
    transfer: KVTransfer | None = None

    def __post_init__(self) -> None:
        if self.scheduler not in (
            "prefill-first",
            "decode-priority",
            "chunked-prefill",
        ):
            raise KeyError(f"unknown scheduler {self.scheduler!r} for CostModel")
        if self.disaggregated and self.scheduler == "chunked-prefill":
            # Chunked prefill is a *colocated* steady state (prompt chunks
            # ride along with decode steps); a disaggregated decode pool
            # runs pure decode steps, so the combination would silently
            # price one thing while claiming another.
            raise ValueError(
                "disaggregated=True prices a pure-decode pool; "
                "scheduler='chunked-prefill' does not apply — use the "
                "default scheduler or drop disaggregation"
            )
        if self.disaggregated and self.transfer is None:
            object.__setattr__(self, "transfer", KVTransfer())

    # ------------------------------------------------------------------
    def concurrency(self, recipe) -> int:
        """Decode-batch size the KV page budget sustains for ``recipe``."""
        per_request = kv_token_bytes(self.arch, self._coerce(recipe)) * (
            self.prompt_len + self.output_len
        )
        return max(1, min(self.max_batch, int(self.page_budget_bytes // per_request)))

    def evaluate(self, recipe) -> RecipeCost:
        """Price one recipe: simulated steady-state serving tokens/s."""
        recipe = self._coerce(recipe)
        concurrency = self.concurrency(recipe)
        mid_ctx = self.prompt_len + self.output_len // 2
        decode = step_time(
            self.spec, self.arch, recipe, [(concurrency, mid_ctx)]
        )
        prefill = step_time(
            self.spec,
            self.arch,
            recipe,
            [(concurrency * self.prompt_len, self.prompt_len)],
        )
        kv_bytes = kv_token_bytes(self.arch, recipe)
        if self.disaggregated:
            # Decode-pool steady state: prefill is someone else's problem,
            # so every decode step is pure — but each completed request is
            # replaced by a migrated one, and the serialized interconnect
            # must sustain that admission rate.
            transfer_bytes = kv_bytes * (self.prompt_len + 1)
            transfer_s = self.transfer.transfer_s(transfer_bytes)
            occupancy = self.transfer.occupancy_s(transfer_bytes)
            compute_rate = concurrency / decode
            if math.isinf(occupancy):
                tokens_per_s = 0.0  # stalled link: nothing ever reaches decode
            elif occupancy > 0:
                link_rate = self.output_len / occupancy
                tokens_per_s = min(compute_rate, link_rate)
            else:
                tokens_per_s = compute_rate
            return RecipeCost(
                recipe_name=recipe.name,
                tokens_per_s=tokens_per_s,
                concurrency=concurrency,
                kv_bytes_per_token=kv_bytes,
                decode_step_s=decode,
                prefill_s=prefill,
                disaggregated=True,
                transfer_bytes_per_request=transfer_bytes,
                transfer_s_per_request=transfer_s,
            )
        if self.scheduler == "chunked-prefill":
            # Steady state under chunked prefill: each decode step also
            # carries the prompt rows entering the batch per generated
            # token (one admission per completion), co-scheduled as a
            # tagged chunk — the mixed-batch price replaces the dedicated
            # prefill step entirely.
            chunk_rows = -(-concurrency * self.prompt_len // self.output_len)
            per_token = step_time(
                self.spec,
                self.arch,
                recipe,
                [
                    (concurrency, mid_ctx, "decode"),
                    (chunk_rows, self.prompt_len, "prefill"),
                ],
            )
        else:
            per_token = decode + prefill / self.output_len
        return RecipeCost(
            recipe_name=recipe.name,
            tokens_per_s=concurrency / per_token,
            concurrency=concurrency,
            kv_bytes_per_token=kv_bytes,
            decode_step_s=decode,
            prefill_s=prefill,
        )

    def dollars_per_mtok(
        self,
        recipe,
        price="rtx5090",
        n_gpus: int = 1,
        tpot_slo_s: float | None = None,
    ) -> float:
        """USD per million generated tokens for this steady state.

        Composes :meth:`evaluate` with the committed GPU price table
        (:mod:`repro.tune.pricing`): the recipe's steady-state
        ``tokens_per_s`` on one GPU of this scenario, billed at
        ``price`` (a preset name or :class:`~repro.tune.pricing.GPUPrice`)
        across ``n_gpus`` — the hook every sweep-report dollar figure
        derives from, so no $/Mtok number is ever hand-entered.

        ``tpot_slo_s`` prices *at an SLO*: the steady-state
        time-per-output-token is ``concurrency / tokens_per_s`` (each
        resident request receives one token per full-batch decode
        round), and a scenario whose steady state violates the SLO is
        infeasible — it prices at ``inf`` rather than reporting a cheap
        rate no compliant deployment could achieve.

        >>> from repro.models.zoo import ARCHS
        >>> cost = CostModel(ARCHS["llama-2-13b"])
        >>> cost.dollars_per_mtok("mxfp4+") < cost.dollars_per_mtok("bf16")
        True
        >>> cost.dollars_per_mtok("mxfp4+", tpot_slo_s=1e-9)
        inf
        """
        from .pricing import get_gpu_price

        cost = self.evaluate(recipe)
        if tpot_slo_s is not None:
            if cost.tokens_per_s <= 0:
                return math.inf
            if cost.concurrency / cost.tokens_per_s > tpot_slo_s:
                return math.inf
        return get_gpu_price(price).dollars_per_mtok(
            cost.tokens_per_s, n_gpus=n_gpus
        )

    @staticmethod
    def _coerce(recipe) -> QuantRecipe:
        if isinstance(recipe, str):
            return QuantRecipe.from_name(recipe)
        return recipe

    def to_dict(self) -> dict:
        """Scenario parameters as JSON; non-default knobs only, so the
        committed ``tune_frontier.json`` artifact stays byte-identical."""
        out = {
            "arch": self.arch.name,
            "gpu": self.spec.name,
            "page_budget_bytes": self.page_budget_bytes,
            "prompt_len": self.prompt_len,
            "output_len": self.output_len,
            "max_batch": self.max_batch,
        }
        if self.scheduler != "prefill-first":
            # The default is omitted so pre-scheduler frontier artifacts
            # (benchmarks/results/tune_frontier.json) stay byte-identical.
            out["scheduler"] = self.scheduler
        if self.disaggregated:
            out["disaggregated"] = True
            out["transfer_gb_s"] = self.transfer.bandwidth_gb_s
            out["transfer_latency_s"] = self.transfer.latency_s
        return out
