"""Autotune a mixed-precision serving recipe and serve the winner.

The `repro.tune` loop end to end:
 1. profile per-layer/per-role quantization sensitivity on a real
    (scaled-down) model — which layers can afford 4-bit, which cannot;
 2. search per-layer format assignments (greedy bit-descent + seeded
    evolution) against a serving cost model built from the GPU step-time
    and KV-footprint models;
 3. print the quality/cost Pareto frontier next to the uniform ladder;
 4. register the winning recipe and serve it through `ServingCluster`.

Run:  python examples/tune_recipe.py   (about half a minute)
"""

from repro.models.zoo import ARCHS
from repro.serve import ServingCluster, get_recipe, make_workload
from repro.tune import CostModel, autotune

GIB = 1 << 30
arch = ARCHS["llama-2-13b"]

# ----------------------------------------------------------------------
# 1+2+3. Profile, search, and assemble the frontier (fixed seed).
# ----------------------------------------------------------------------
result = autotune(
    model="test-tiny",
    cost_model=CostModel(arch, page_budget_bytes=4 * GIB),
    seed=0,
    generations=4,
    population=12,
    register=True,  # frontier recipes land in the serving registry
)

report = result.report
print(f"Sensitivity profile ({report.model}, baseline ppl {report.baseline_ppl:.2f})")
print("most sensitive roles under mxfp4:")
for role, delta in report.ranked_roles("mxfp4")[:3]:
    print(f"  {role:>8s}: +{delta:6.2f} ppl when cast alone")

print(f"\nPareto frontier ({result.measurements} measured candidates):")
print(f"{'origin':>10s} {'ppl':>8s} {'tok/s':>8s}  recipe")
for p in result.frontier:
    print(f"{p.origin:>10s} {p.perplexity:8.2f} {p.tokens_per_s:8.0f}  {p.recipe.name}")

base = result.uniform[result.baseline]
winner = result.winner
assert winner is not None
print(f"""
Winner: {winner.recipe.name}
  vs uniform {result.baseline}: ppl {winner.perplexity:.2f} < {base.perplexity:.2f},
  simulated serving {winner.tokens_per_s:.0f} > {base.tokens_per_s:.0f} tok/s —
  a searched mixed-precision recipe Pareto-dominates the uniform cast.""")

# ----------------------------------------------------------------------
# 4. The winner is a first-class recipe: serve it on a cluster.
# ----------------------------------------------------------------------
recipe = get_recipe(winner.recipe.name)  # registered by autotune(register=True)
reqs = make_workload(32, seed=7, arrival="bursty", rate_rps=200.0, burst_size=8)
for name in (winner.recipe.name, result.baseline):
    fleet = ServingCluster(
        arch, get_recipe(name), n_replicas=2,
        page_budget_bytes=2 * GIB, block_tokens=16,
    ).run(reqs)
    print(f"  cluster({name[:40]:>40s}): {fleet.throughput_tok_s:6.0f} tok/s, "
          f"mean TTFT {fleet.mean_ttft_s * 1e3:6.1f} ms")

print("""
The tuned recipe rides the same paged-KV serving stack as every named
recipe — tune -> register -> serve is one unbroken path.""")
