"""Tests for the reverse-mode autodiff engine (repro.nn.tensor).

Gradients are checked against central finite differences.
"""

import numpy as np
import pytest

from repro.nn.functional import cross_entropy, gelu, rmsnorm, silu, softmax
from repro.nn.tensor import Tensor, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn(x)
        x[idx] = orig - eps
        lo = fn(x)
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


def check_gradient(op, shape=(3, 4), seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    out.sum().backward()
    num = numeric_grad(lambda a: float(op(Tensor(a)).sum().item()), x.copy())
    np.testing.assert_allclose(t.grad, num, atol=atol, rtol=1e-4)


class TestElementwiseGrads:
    def test_add_mul(self):
        check_gradient(lambda t: t * 3.0 + t * t)

    def test_pow(self):
        check_gradient(lambda t: (t * t + 1.0).pow(0.5))

    def test_exp_log(self):
        check_gradient(lambda t: ((t * t) + 1.0).log() + t.exp())

    def test_tanh_sigmoid_relu(self):
        check_gradient(lambda t: t.tanh() + t.sigmoid() + t.relu())

    def test_division(self):
        check_gradient(lambda t: t / (t * t + 2.0))


class TestMatmulGrads:
    def test_matmul(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_batched_matmul(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestBroadcasting:
    def test_bias_broadcast(self):
        a = Tensor(np.zeros((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))

    def test_keepdims_mean(self):
        check_gradient(lambda t: t - t.mean(axis=-1, keepdims=True))


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0))

    def test_max_gradient_ties(self):
        t = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        t.max(axis=-1).sum().backward()
        # ties split the gradient evenly
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])

    def test_reshape_transpose(self):
        check_gradient(lambda t: t.reshape(4, 3).transpose(1, 0) * 2.0)

    def test_getitem(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2, 0, 1, 0, 0, 0])

    def test_take_rows(self):
        t = Tensor(np.eye(4), requires_grad=True)
        t.take_rows(np.array([[1, 1], [3, 0]])).sum().backward()
        # each gather of a row adds ones(4); rows gathered 1, 2, 0, 1 times
        np.testing.assert_allclose(t.grad.sum(axis=1), [4.0, 8.0, 0.0, 4.0])

    def test_where(self):
        x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        x.where(np.array([True, False]), 0.0).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0])


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        s = softmax(Tensor(rng.standard_normal((5, 7))))
        np.testing.assert_allclose(s.data.sum(axis=-1), 1.0)

    def test_softmax_stability(self):
        s = softmax(Tensor(np.array([1e4, 1e4 + 1.0])))
        assert np.all(np.isfinite(s.data))

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.log(np.array([[0.25, 0.75]])), requires_grad=True)
        loss = cross_entropy(logits, np.array([1]))
        assert loss.item() == pytest.approx(-np.log(0.75))

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, 5))
        targets = np.array([0, 2, 4, 1])
        t = Tensor(x.copy(), requires_grad=True)
        cross_entropy(t, targets).backward()
        num = numeric_grad(
            lambda a: float(cross_entropy(Tensor(a), targets).item()), x.copy()
        )
        np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_rmsnorm_gradient(self):
        gain = Tensor(np.ones(4))
        check_gradient(lambda t: rmsnorm(t, gain), shape=(3, 4))

    def test_gelu_silu_gradients(self):
        check_gradient(lambda t: gelu(t) + silu(t))


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        with no_grad():
            t = Tensor(np.ones(3), requires_grad=True)
            out = t * 2.0
        assert not out.requires_grad

    def test_gradient_accumulation(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0 + t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_reused_node_diamond(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t  # dy/dt = 2t
        z = y + y  # dz/dt = 4t
        z.backward()
        np.testing.assert_allclose(t.grad, [8.0])

    def test_ste_identity_gradient(self):
        t = Tensor(np.array([0.3, 1.7]), requires_grad=True)
        t.apply_ste(np.round).sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0])
