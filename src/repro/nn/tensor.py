"""A minimal reverse-mode automatic differentiation engine over numpy.

This is the training substrate for the scaled-down model zoo: a ``Tensor``
wraps an ndarray, records the operations applied to it, and ``backward()``
propagates gradients through the recorded graph in reverse topological
order. Broadcasting follows numpy semantics; gradients are summed back
("unbroadcast") to the operand shapes.

Inference runs under :func:`no_grad`, which skips graph construction so the
quantized-evaluation paths pay no autodiff overhead.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the context (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to invert numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}, name={self.name!r})"

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(x) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"], backward) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accum(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        self.grad = grad if self.grad is None else self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        self._accum(grad)

        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in seen:
                    stack.append((p, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward():
            if self.requires_grad:
                self._accum(out.grad)
            if other.requires_grad:
                other._accum(out.grad)

        out = self._make(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward():
            if self.requires_grad:
                self._accum(out.grad * other.data)
            if other.requires_grad:
                other._accum(out.grad * self.data)

        out = self._make(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return self * self._lift(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) * self.pow(-1.0)

    def pow(self, p: float) -> "Tensor":
        out_data = self.data**p

        def backward():
            if self.requires_grad:
                self._accum(out.grad * p * self.data ** (p - 1))

        out = self._make(out_data, (self,), backward)
        return out

    def __pow__(self, p: float) -> "Tensor":
        return self.pow(p)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward():
            if self.requires_grad:
                g = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accum(g)
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accum(g)

        out = self._make(out_data, (self, other), backward)
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward():
            if self.requires_grad:
                self._accum(out.grad * out_data)

        out = self._make(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward():
            if self.requires_grad:
                self._accum(out.grad / self.data)

        out = self._make(out_data, (self,), backward)
        return out

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward():
            if self.requires_grad:
                self._accum(out.grad * (1 - out_data**2))

        out = self._make(out_data, (self,), backward)
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward():
            if self.requires_grad:
                self._accum(out.grad * out_data * (1 - out_data))

        out = self._make(out_data, (self,), backward)
        return out

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0)

        def backward():
            if self.requires_grad:
                self._accum(out.grad * (self.data > 0))

        out = self._make(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # reductions / shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward():
            if self.requires_grad:
                g = out.grad
                if not keepdims and axis is not None:
                    g = np.expand_dims(g, axis)
                self._accum(np.broadcast_to(g, self.data.shape))

        out = self._make(out_data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(n))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward():
            if self.requires_grad:
                g = out.grad
                o = out_data
                if not keepdims and axis is not None:
                    g = np.expand_dims(g, axis)
                    o = np.expand_dims(o, axis)
                mask = self.data == o
                # spread ties evenly so the gradient stays well-defined
                share = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1)
                self._accum(g * share)

        out = self._make(out_data, (self,), backward)
        return out

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.data.shape
        out_data = self.data.reshape(shape)

        def backward():
            if self.requires_grad:
                self._accum(out.grad.reshape(orig))

        out = self._make(out_data, (self,), backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inv = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward():
            if self.requires_grad:
                self._accum(out.grad.transpose(inv))

        out = self._make(out_data, (self,), backward)
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward():
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, idx, out.grad)
                self._accum(g)

        out = self._make(out_data, (self,), backward)
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style gather of rows (indices may repeat)."""
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward():
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, indices.reshape(-1), out.grad.reshape(-1, self.data.shape[-1]))
                self._accum(g)

        out = self._make(out_data, (self,), backward)
        return out

    def where(self, mask: np.ndarray, other) -> "Tensor":
        """``mask ? self : other`` with gradients routed accordingly."""
        other = self._lift(other)
        out_data = np.where(mask, self.data, other.data)

        def backward():
            if self.requires_grad:
                self._accum(np.where(mask, out.grad, 0.0))
            if other.requires_grad:
                other._accum(np.where(mask, 0.0, out.grad))

        out = self._make(out_data, (self, other), backward)
        return out

    def apply_ste(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Tensor":
        """Apply ``fn`` forward with a straight-through (identity) gradient.

        Used for quantization-aware fine-tuning (Table 9): the quantizer is
        non-differentiable, so its gradient is approximated by identity.
        """
        out_data = fn(self.data)

        def backward():
            if self.requires_grad:
                self._accum(out.grad)

        out = self._make(out_data, (self,), backward)
        return out
