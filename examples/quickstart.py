"""Quickstart: quantize a tensor with MX and MX+ and inspect the formats.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import available_formats, get_format
from repro.core import mse_decomposition
from repro.core.layout import pack_mxplus

# A realistic activation tile: Gaussian values with one outlier channel,
# exactly the regime that breaks low-bit block formats (paper Section 3.2).
rng = np.random.default_rng(0)
x = rng.standard_normal((64, 256))
x[:, 19] *= 50.0  # outlier channel

print("available formats:", ", ".join(available_formats()))
print()
print(f"{'format':>10s} {'bits/elem':>9s} {'MSE':>12s} {'BM share of MSE':>16s}")
for name in ["mxfp4", "mxfp4+", "mxfp4++", "mxfp6", "mxfp6+", "mxfp8", "nvfp4", "msfp12", "smx4"]:
    fmt = get_format(name)
    q = fmt(x)
    err = float(np.mean((x - q) ** 2))
    d = mse_decomposition(x, q)
    print(f"{name:>10s} {fmt.bits_per_element():9.2f} {err:12.6f} {d.bm_share:15.1%}")

# The paper's worked example (Figure 4/6): the block with the -9.84 outlier.
block = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])
print("\nFigure 6 worked example:")
print("  BF16   ", block.tolist())
print("  MXFP4  ", get_format("mxfp4")(block).tolist(), "(outlier -9.84 -> -8.0)")
print("  MXFP4+ ", get_format("mxfp4+")(block).tolist(), "(outlier -9.84 -> -10.0)")
print("  MXFP4++", get_format("mxfp4++")(block).tolist(), "(NBMs rescued too)")

# Bit-exact storage: MX+ adds one sideband byte (BM index) per block.
fmt = get_format("mxfp4+")
packed = pack_mxplus(fmt, fmt.encode(x))
print(f"\npacked {x.size} elements into {packed.total_bytes()} bytes "
      f"({packed.total_bytes() * 8 / x.size:.2f} bits/element)")
