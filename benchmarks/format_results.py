"""Render ``benchmarks/results/*.json`` into a markdown summary.

Intended for PR comments / CI job summaries::

    python benchmarks/format_results.py            # markdown to stdout
    python benchmarks/format_results.py --out results.md
    python benchmarks/format_results.py serving_engine fig13_speedup_accuracy
    python benchmarks/format_results.py --pr-comment           # deltas vs HEAD
    python benchmarks/format_results.py --pr-comment --baseline-ref origin/main

A serving headline table (throughput, TTFT/TPOT, speedup) is emitted
first when the corresponding artifacts exist; every other artifact is
rendered generically, one section per JSON file.

``--pr-comment`` instead renders the *change*: for every serving headline
metric it joins the freshly regenerated artifacts in ``results/`` against
the committed versions (``git show <ref>:...``) and tabulates per-recipe
deltas — the table CI posts as a job summary so a PR's serving impact is
readable without downloading artifacts.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.bench.report import fmt_value as _fmt, markdown_table as _table
    from repro.tune.pricing import get_gpu_price
except ImportError:  # CI invokes this script without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.report import fmt_value as _fmt, markdown_table as _table
    from repro.tune.pricing import get_gpu_price

#: GPU price preset used for the tuned-winner $/Mtok column.
PR_COMMENT_GPU = "rtx5090"

#: artifacts surfaced in the headline serving summary, with the columns
#: (json key -> table header) each contributes.
SERVING_ARTIFACTS = {
    "serving_engine": {
        "throughput_tok_s": "throughput (tok/s)",
        "mean_ttft_ms": "TTFT (ms)",
        "mean_tpot_ms": "TPOT (ms)",
        "speedup_vs_bf16": "serving speedup",
    },
    "fig13_speedup_accuracy": {
        "speedup_out64": "speedup (64 out)",
        "avg_accuracy": "avg accuracy (%)",
    },
}


def _load(name: str) -> dict | None:
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as f:
        return json.load(f)


def render_generic(name: str, payload) -> str:
    """One markdown section for an arbitrary results payload."""
    title = f"### `{name}`"
    if not isinstance(payload, dict) or not payload:
        return f"{title}\n\n```\n{json.dumps(payload, indent=2)}\n```"
    if all(isinstance(v, dict) for v in payload.values()):
        columns: list[str] = []
        for row in payload.values():
            columns += [c for c in row if c not in columns]
        rows = [
            [str(key)] + [_fmt(row.get(c, "")) for c in columns]
            for key, row in payload.items()
        ]
        return f"{title}\n\n" + _table(["config"] + columns, rows)
    rows = [[str(k), _fmt(v)] for k, v in payload.items()]
    return f"{title}\n\n" + _table(["key", "value"], rows)


def render_serving_summary() -> str | None:
    """Headline table joining the serving artifacts per recipe name."""
    merged: dict[str, dict[str, str]] = {}
    columns: list[str] = []
    for artifact, wanted in SERVING_ARTIFACTS.items():
        payload = _load(artifact)
        if not isinstance(payload, dict):
            continue
        for key, header in wanted.items():
            if header not in columns:
                columns.append(header)
        for config, row in payload.items():
            if not isinstance(row, dict):
                continue
            cells = merged.setdefault(str(config), {})
            for key, header in wanted.items():
                if key in row:
                    cells[header] = _fmt(row[key])
    if not merged:
        return None
    rows = [
        [config] + [cells.get(c, "") for c in columns]
        for config, cells in merged.items()
    ]
    return "## Serving summary\n\n" + _table(["recipe"] + columns, rows)


def _load_committed(name: str, ref: str) -> dict | None:
    """The committed version of an artifact at ``ref`` (None if absent)."""
    proc = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "show", f"{ref}:benchmarks/results/{name}.json"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def _delta_cell(current, committed) -> str:
    """``current (Δ%)`` against the committed value, tolerating gaps."""
    if not isinstance(current, (int, float)):
        return _fmt(current)
    if not isinstance(committed, (int, float)):
        return f"{_fmt(current)} (new)"  # no committed baseline for this cell
    if committed == 0:
        # a real zero baseline is a baseline — surface the change, don't
        # mislabel it as new
        return _fmt(current) if current == 0 else f"{_fmt(current)} (was 0)"
    pct = (current - committed) / abs(committed) * 100.0
    flag = "" if abs(pct) < 0.005 else f" ({pct:+.2f}%)"
    return f"{_fmt(current)}{flag}"


def _mtok_cell(tokens_per_s) -> str:
    """$/Mtok at the PR-comment price preset ("" for non-numeric rates)."""
    if not isinstance(tokens_per_s, (int, float)):
        return ""
    return _fmt(get_gpu_price(PR_COMMENT_GPU).dollars_per_mtok(tokens_per_s))


def render_pr_comment(ref: str = "HEAD") -> str:
    """Markdown summary of serving-metric deltas vs the committed results.

    One table per serving artifact: rows are recipes, cells show the
    regenerated value with its percentage delta against ``ref``. Artifacts
    missing on either side are reported rather than silently skipped.
    """
    sections = [f"# Benchmark deltas vs `{ref}`"]
    for artifact, wanted in SERVING_ARTIFACTS.items():
        current = _load(artifact)
        if not isinstance(current, dict):
            sections.append(f"### `{artifact}`\n\n> no regenerated artifact — run "
                            f"`pytest benchmarks/test_{artifact}.py` first.")
            continue
        committed = _load_committed(artifact, ref) or {}
        headers = ["recipe"] + [f"{h} (Δ)" for h in wanted.values()]
        rows = []
        for config, row in current.items():
            if not isinstance(row, dict):
                continue
            base_row = committed.get(config, {})
            rows.append(
                [str(config)]
                + [
                    _delta_cell(row.get(key), base_row.get(key))
                    for key in wanted
                ]
            )
        sections.append(f"### `{artifact}`\n\n" + _table(headers, rows))
    tune = _load("tune_frontier")
    if isinstance(tune, dict) and tune.get("winner"):
        winner = tune["winner"]
        base = tune.get("uniform", {}).get(tune.get("baseline", "mxfp4"), {})
        committed_tune = _load_committed("tune_frontier", ref) or {}
        committed_winner = committed_tune.get("winner") or {}
        rows = [
            [
                "tuned winner",
                str(winner.get("recipe", {}).get("name", "?")),
                _delta_cell(winner.get("perplexity"), committed_winner.get("perplexity")),
                _delta_cell(winner.get("tokens_per_s"), committed_winner.get("tokens_per_s")),
                _mtok_cell(winner.get("tokens_per_s")),
            ],
            [
                f"uniform {tune.get('baseline', 'mxfp4')}",
                str(base.get("recipe", {}).get("name", "?")),
                _fmt(base.get("perplexity", "")),
                _fmt(base.get("tokens_per_s", "")),
                _mtok_cell(base.get("tokens_per_s")),
            ],
        ]
        sections.append(
            "### `tune_frontier`\n\n"
            + _table(
                ["point", "recipe", "perplexity (Δ)", "tokens/s (Δ)",
                 f"$/Mtok @ {PR_COMMENT_GPU}"],
                rows,
            )
        )
    return "\n\n".join(sections) + "\n"


def render(names: list[str] | None = None) -> str:
    if names:
        available = [n for n in names if (RESULTS_DIR / f"{n}.json").exists()]
        missing = sorted(set(names) - set(available))
        if missing:
            print(f"warning: no results for {', '.join(missing)}", file=sys.stderr)
    else:
        available = sorted(p.stem for p in RESULTS_DIR.glob("*.json"))
    sections = ["# Benchmark results"]
    summary = render_serving_summary()
    if summary and not names:
        sections.append(summary)
    sections += [render_generic(n, _load(n)) for n in available]
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="artifact names (default: all)")
    parser.add_argument("--out", type=Path, help="write markdown to this file")
    parser.add_argument(
        "--pr-comment",
        action="store_true",
        help="render serving-metric deltas vs committed results instead",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref the committed baseline is read from (default: HEAD)",
    )
    args = parser.parse_args(argv)
    if args.pr_comment:
        markdown = render_pr_comment(args.baseline_ref)
    else:
        markdown = render(args.names or None)
    if args.out:
        args.out.write_text(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
