"""Figure 13: end-to-end speedup over BF16 vs average task accuracy on
Llama-2-13B, for prefill-dominant (8 out tokens) and decode-dominant (64)
scenarios."""

from _util import print_table, run_once, save_result

from repro.eval import task_accuracy
from repro.gpu.inference import end_to_end_speedup
from repro.models.zoo import ARCHS
from repro.serve import get_recipe

SPEED_CONFIGS = ["mxfp4", "a-mxfp4+", "mxfp8", "mxfp4+", "mxfp4++", "a8w4"]


def test_fig13(benchmark, llama2_13b, harness_tasks):
    arch = ARCHS["llama-2-13b"]

    def run():
        out = {}
        for name in SPEED_CONFIGS:
            # One recipe drives both the accuracy and the timing paths.
            recipe = get_recipe(name)
            qc = recipe.to_context()
            acc = sum(
                task_accuracy(llama2_13b, t, qc) for t in harness_tasks.values()
            ) / len(harness_tasks)
            out[name] = {
                "speedup_out8": end_to_end_speedup(arch, recipe, 4, 1024, 8),
                "speedup_out64": end_to_end_speedup(arch, recipe, 4, 1024, 64),
                "avg_accuracy": acc,
            }
        return out

    table = run_once(benchmark, run)
    save_result("fig13_speedup_accuracy", table)
    print_table("Figure 13: speedup over BF16 + avg accuracy", table)

    # MXFP4+ under HW support: near-MXFP4 speedup with higher accuracy.
    assert table["mxfp4+"]["speedup_out64"] > table["mxfp4"]["speedup_out64"] * 0.9
    assert table["mxfp4+"]["avg_accuracy"] > table["mxfp4"]["avg_accuracy"]
    # A-MXFP4+ (software) also beats MXFP4 accuracy at near-MXFP4 speed.
    assert table["a-mxfp4+"]["avg_accuracy"] > table["mxfp4"]["avg_accuracy"]
    assert table["a-mxfp4+"]["speedup_out64"] > table["mxfp8"]["speedup_out64"]
