"""Baseline quantization schemes: shared plumbing (Tables 7/8/13).

Every scheme is a :class:`~repro.nn.quantize.QuantContext` subclass that
overrides ``quantize_matmul_pair`` — the joint hook on each ``x @ W``
linear matmul. Following the paper's Table 7 protocol, scheme contexts
quantize only weight-activation matmuls (no LM head, no attention
score/value matmuls), which is the intersection of quantized operations
across the compared schemes.

Calibration note: the original systems calibrate activation statistics on
a held-out set; our schemes compute the same statistics from the batch
being evaluated (every forward sees the full eval batch at once, so these
are the same numbers a calibration pass over that data would produce).

``SCHEME_MATRIX`` encodes the qualitative Table 13 comparison.

Configuration note: :class:`repro.serve.QuantRecipe` is the canonical
config entry point for the repo — its ``scope="linear-only"`` option
reproduces this module's Table 7 protocol (no LM head, no attention
matmuls), and ``QuantRecipe.to_context()`` is how recipes reach the
numeric path these scheme contexts extend. The legacy
``repro.gpu.inference.ServingConfig``/``CONFIGS`` surface is deprecated
in favour of recipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.quantize import QuantContext

__all__ = ["SchemeContext", "SchemeCard", "SCHEME_MATRIX"]


@dataclass
class SchemeContext(QuantContext):
    """Base for Table 7 scheme contexts: linear matmuls only."""

    quantize_lm_head: bool = False
    quantize_attention: bool = False

    def quantize_matmul_pair(self, x, w):  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class SchemeCard:
    """Qualitative capability flags (the paper's Table 13)."""

    name: str
    compute_efficiency: bool  # low-bit compute (not dequant-to-high-precision)
    standard_general: bool  # standard formats / no bespoke hardware
    high_accuracy: bool  # maintains accuracy at 4-bit W+A


SCHEME_MATRIX: list[SchemeCard] = [
    SchemeCard("AWQ", compute_efficiency=False, standard_general=True, high_accuracy=True),
    SchemeCard("SqueezeLLM", compute_efficiency=False, standard_general=True, high_accuracy=True),
    SchemeCard("SmoothQuant", compute_efficiency=True, standard_general=True, high_accuracy=False),
    SchemeCard("QuaRot", compute_efficiency=True, standard_general=True, high_accuracy=False),
    SchemeCard("OliVe", compute_efficiency=True, standard_general=False, high_accuracy=False),
    SchemeCard("Tender", compute_efficiency=True, standard_general=True, high_accuracy=False),
    SchemeCard("LLM-FP4", compute_efficiency=True, standard_general=False, high_accuracy=False),
    SchemeCard("MX+", compute_efficiency=True, standard_general=True, high_accuracy=True),
]
