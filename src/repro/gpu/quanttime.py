"""Quantization-time measurement (Table 6).

Unlike the other performance tables, quantization time is measured on
*our own* conversion kernels: we time the vectorized MXFP4 / MXFP4+ /
MXFP4++ encoders on (tokens x dim) activations and report time normalized
to MXFP4. The paper's qualitative claims — MXFP4+ costs about the same as
MXFP4 (the BM is found anyway while computing the shared scale) and
MXFP4++ pays a small extra for the second-max — fall out of the kernel
structure itself.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.mx import MXFP4
from ..core.mxplus import MXFP4Plus
from ..core.mxpp import MXFP4PlusPlus

__all__ = ["measure_quantization_time", "quantization_time_table"]


def measure_quantization_time(
    tokens: int, dim: int = 4096, repeats: int = 3, seed: int = 0
) -> dict[str, float]:
    """Seconds to quantize a (tokens, dim) activation, per format.

    The formats are timed round-robin within each repeat (rather than one
    tight loop per format) so that transient machine load degrades every
    format in the same round instead of skewing a single one; the reported
    time is the per-format minimum across rounds, which makes the
    MXFP4-normalized ratios stable on shared/loaded CPUs.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((tokens, dim))
    formats = {
        "mxfp4": MXFP4(),
        "mxfp4+": MXFP4Plus(),
        "mxfp4++": MXFP4PlusPlus(),
    }
    best = {name: float("inf") for name in formats}
    for fmt in formats.values():  # warm-up
        fmt.quantize_dequantize(x)
    for _ in range(repeats):
        for name, fmt in formats.items():
            t0 = time.perf_counter()
            fmt.quantize_dequantize(x)
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def quantization_time_table(
    token_lengths: list[int], dim: int = 4096, repeats: int = 3
) -> dict[int, dict[str, float]]:
    """Table 6: normalized quantization time per input-token length."""
    out: dict[int, dict[str, float]] = {}
    for tokens in token_lengths:
        raw = measure_quantization_time(tokens, dim, repeats)
        base = raw["mxfp4"]
        out[tokens] = {k: v / base for k, v in raw.items()}
    return out
