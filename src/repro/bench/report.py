"""Sweep aggregation + markdown rendering (the one table code path).

Two jobs live here:

* :func:`aggregate` folds a sweep directory's manifests into one JSON
  payload — the shape committed as ``benchmarks/results/BENCH_sweep.json``.
  Everything under ``cells``/``winner``/``pareto`` is a pure function of
  the matrix (byte-identical across reruns and resumes at a fixed
  seed); the ``perf`` block is the machine-dependent wall-clock
  trajectory (simulator requests/sec) and is **excluded** from
  byte-identity checks via :func:`canonical_payload`.
* :func:`render_report` renders that payload as markdown: a per-cell
  headline table with Δ-vs-baseline, per-axis pivot tables, and
  winner/Pareto callouts. The low-level table primitives
  (:func:`markdown_table`, :func:`fmt_value`) are shared with
  ``benchmarks/format_results.py`` — sweep reports and PR comments
  render through one code path.

>>> markdown_table(["a", "b"], [["1", "2"]])
'| a | b |\\n| --- | --- |\\n| 1 | 2 |'
>>> fmt_value(0.123456)
'0.1235'
"""

from __future__ import annotations

import copy
import json
import math

from .planner import load_plan, read_manifest

__all__ = [
    "fmt_value",
    "markdown_table",
    "aggregate",
    "canonical_payload",
    "render_report",
    "report_sweep",
    "dump_payload",
]

#: Minimum SLO attainment a cell needs to be eligible as "winner at SLO".
SLO_ATTAINMENT_MIN = 0.9


def fmt_value(value) -> str:
    """One table cell: floats at 4 significant digits, rest ``str``.

    >>> fmt_value(True), fmt_value(1234.5678), fmt_value("x")
    ('True', '1235', 'x')
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    """A GitHub-flavored markdown table from pre-formatted string cells."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def _dollars(cell: dict) -> float:
    """A completed cell's headline $/Mtok (``inf`` if absent/failed)."""
    result = cell.get("result") or {}
    return float(result.get("pricing", {}).get("dollars_per_mtok", math.inf))


def _eligible(cell: dict) -> bool:
    return (
        cell["status"] == "completed"
        and math.isfinite(_dollars(cell))
        and (cell["result"] or {}).get("slo_attainment", 0.0)
        >= SLO_ATTAINMENT_MIN
    )


def _winner_and_pareto(cells: dict) -> tuple[str | None, list[str]]:
    """Cheapest-at-SLO cell id + the ($/Mtok, p99 TTFT) Pareto front."""
    eligible = {cid: c for cid, c in cells.items() if _eligible(c)}
    winner = min(eligible, key=lambda cid: (_dollars(eligible[cid]), cid)) \
        if eligible else None
    completed = {
        cid: c for cid, c in cells.items() if c["status"] == "completed"
    }
    pareto = []
    for cid, cell in completed.items():
        d, p99 = _dollars(cell), cell["result"]["p99_ttft_ms"]
        dominated = any(
            (_dollars(o) <= d and o["result"]["p99_ttft_ms"] <= p99)
            and (_dollars(o) < d or o["result"]["p99_ttft_ms"] < p99)
            for ocid, o in completed.items()
            if ocid != cid
        )
        if not dominated:
            pareto.append(cid)
    return winner, sorted(pareto)


def aggregate(sweep_dir) -> dict:
    """Fold a sweep directory into the committed-artifact payload.

    Deterministic sections: ``matrix``, ``baseline``,
    ``skipped_infeasible``, ``cells`` (axes + status + result per cell),
    ``winner``, ``pareto``. Machine-dependent section: ``perf`` (total
    wall-clock, simulated requests, simulator requests/sec of *real*
    time — the perf-trajectory series entry).
    """
    plan = load_plan(sweep_dir)
    cells: dict[str, dict] = {}
    wall = 0.0
    simulated = 0
    for spec in plan.runs:
        manifest = read_manifest(plan.root, spec.cell_id)
        cells[spec.cell_id] = {
            "axes": spec.axes(),
            "status": manifest["status"],
            "result": manifest["result"],
            "error": manifest["error"],
        }
        # Traced sweeps only: the per-cell Perfetto artifact's filename.
        # Untraced manifests have no "trace" key, so committed aggregates
        # regenerate byte-identically.
        if "trace" in manifest:
            cells[spec.cell_id]["trace"] = manifest["trace"]
        wall += manifest["wall_clock_s"] or 0.0
        if manifest["status"] == "completed":
            simulated += manifest["result"]["requests"]
    winner, pareto = _winner_and_pareto(cells)
    return {
        "matrix": plan.matrix.to_dict(),
        "baseline": plan.baseline,
        "skipped_infeasible": [dict(s) for s in plan.skipped],
        "cells": cells,
        "winner": winner,
        "pareto": pareto,
        "perf": {
            "note": "machine-dependent wall-clock; excluded from "
                    "byte-identity checks (see canonical_payload)",
            "wall_clock_s": wall,
            "simulated_requests": simulated,
            "requests_per_wall_s": simulated / wall if wall > 0 else 0.0,
        },
    }


def canonical_payload(payload: dict) -> dict:
    """The byte-identity surface: the payload minus its ``perf`` block.

    Two sweeps of the same matrix at the same seed — interrupted,
    resumed, or rerun from scratch — must agree on this exactly.
    """
    out = copy.deepcopy(payload)
    out.pop("perf", None)
    return out


def _delta_pct(current: float, base: float) -> str:
    if not (math.isfinite(current) and math.isfinite(base)) or base == 0:
        return ""
    return f"{(current - base) / abs(base) * 100.0:+.1f}%"


def _axis_pivots(cells: dict) -> list[str]:
    """One pivot table per axis that actually varies across the cells."""
    sections: list[str] = []
    completed = {c: v for c, v in cells.items() if v["status"] == "completed"}
    for axis in ("recipe", "scheduler", "interconnect", "fleet", "workload"):
        values = sorted({v["axes"][axis] for v in cells.values()})
        if len(values) < 2:
            continue
        rows = []
        for value in values:
            group = {
                cid: c for cid, c in completed.items()
                if c["axes"][axis] == value
            }
            if not group:
                rows.append([f"`{value}`", "0", "", "", ""])
                continue
            dollars = [_dollars(c) for c in group.values()]
            finite = [d for d in dollars if math.isfinite(d)]
            goodput = [c["result"]["goodput_tok_s"] for c in group.values()]
            best = min(group, key=lambda cid: (_dollars(group[cid]), cid))
            rows.append([
                f"`{value}`",
                str(len(group)),
                fmt_value(sum(finite) / len(finite)) if finite else "inf",
                fmt_value(sum(goodput) / len(goodput)),
                f"`{best}`",
            ])
        sections.append(f"### by {axis}\n\n" + markdown_table(
            [axis, "cells", "mean $/Mtok", "mean goodput tok/s",
             "cheapest cell"],
            rows,
        ))
    return sections


def render_report(payload: dict) -> str:
    """Render an aggregated sweep payload as the markdown report.

    Deterministic by construction: only the canonical sections are
    rendered (wall-clock perf stays in manifests and the JSON payload),
    so an interrupted-then-resumed sweep writes a report byte-identical
    to an uninterrupted one.
    """
    matrix = payload["matrix"]
    cells = payload["cells"]
    statuses = [c["status"] for c in cells.values()]
    slo = (
        f"TTFT <= {fmt_value(matrix['ttft_slo_s'])}s, "
        f"TPOT <= {fmt_value(matrix['tpot_slo_s'])}s"
    )
    lines = [
        f"# Sweep report — `{matrix['name']}`",
        "",
        f"{len(cells)} cells ({statuses.count('completed')} completed, "
        f"{statuses.count('failed')} failed, "
        f"{statuses.count('planned')} planned) · SLO: {slo} · priced at "
        f"`{matrix['gpu_price']}` · arch `{matrix['arch']}` · "
        f"{fmt_value(matrix['page_budget_gib'])} GiB pages/replica · "
        f"seed {matrix['seed']}",
        "",
        "## Cells",
        "",
    ]
    base_cell = cells.get(payload.get("baseline") or "", {})
    base_dollars = _dollars(base_cell) if base_cell else math.inf
    headers = [
        "recipe", "scheduler", "fleet", "link", "workload", "$/Mtok",
        "Δ vs baseline", "goodput tok/s", "req/s", "p99 TTFT (ms)",
        "TPOT (ms)", "SLO att.",
    ]
    rows = []
    for cid, cell in cells.items():
        axes = cell["axes"]
        tag = ""
        if cid == payload.get("baseline"):
            tag = " (baseline)"
        elif cid == payload.get("winner"):
            tag = " **(winner)**"
        if cell["status"] != "completed":
            rows.append(
                [axes[a] for a in ("recipe", "scheduler", "fleet",
                                   "interconnect", "workload")]
                + [f"*{cell['status']}*{tag}"] + [""] * 6
            )
            continue
        r = cell["result"]
        d = _dollars(cell)
        rows.append([
            axes["recipe"] + tag,
            axes["scheduler"],
            axes["fleet"],
            axes["interconnect"],
            axes["workload"],
            fmt_value(d) if math.isfinite(d) else "inf (SLO-infeasible)",
            _delta_pct(d, base_dollars),
            fmt_value(r["goodput_tok_s"]),
            fmt_value(r["requests_per_s"]),
            fmt_value(r["p99_ttft_ms"]),
            fmt_value(r["mean_tpot_ms"]),
            fmt_value(r["slo_attainment"]),
        ])
    lines.append(markdown_table(headers, rows))

    pivots = _axis_pivots(cells)
    if pivots:
        lines += ["", "## Pivots ($/Mtok per axis)", ""]
        lines.append("\n\n".join(pivots))

    lines += ["", "## Winner & Pareto", ""]
    winner = payload.get("winner")
    if winner:
        w = cells[winner]
        lines.append(
            f"- **Cheapest at SLO** (attainment >= {SLO_ATTAINMENT_MIN}): "
            f"`{winner}` — {fmt_value(_dollars(w))} $/Mtok "
            f"({fmt_value(w['result']['goodput_tok_s'])} goodput tok/s)"
        )
        if base_cell and winner != payload.get("baseline") and math.isfinite(
            base_dollars
        ):
            lines.append(
                f"- vs baseline `{payload['baseline']}`: "
                f"{_delta_pct(_dollars(w), base_dollars)} $/Mtok"
            )
    else:
        lines.append("- no cell meets the SLO attainment bar — no winner")
    if payload.get("pareto"):
        front = ", ".join(f"`{cid}`" for cid in payload["pareto"])
        lines.append(f"- Pareto front ($/Mtok x p99 TTFT): {front}")

    traced = {cid: c["trace"] for cid, c in cells.items() if c.get("trace")}
    if traced:
        lines += ["", "## Traces", ""]
        lines += [
            f"- `{cid}`: [`runs/{cid}/{name}`](runs/{cid}/{name}) "
            "(load in Perfetto: https://ui.perfetto.dev)"
            for cid, name in traced.items()
        ]

    skipped = payload.get("skipped_infeasible", [])
    if skipped:
        lines += ["", "## Skipped (infeasible combinations)", ""]
        lines += [
            f"- `{'/'.join(s['combo'])}` — {s['reason']}" for s in skipped
        ]
    failures = {
        cid: c for cid, c in cells.items() if c["status"] == "failed"
    }
    if failures:
        lines += ["", "## Failures", ""]
        lines += [f"- `{cid}`: {c['error']}" for cid, c in failures.items()]
    return "\n".join(lines) + "\n"


def report_sweep(sweep_dir) -> str:
    """Aggregate a sweep dir and render its markdown report in one call."""
    return render_report(aggregate(sweep_dir))


def dump_payload(payload: dict) -> str:
    """The canonical JSON serialization of an aggregated payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
