"""MXINT formats and their MX+-style extensions (Section 8.2, Table 10).

MXINT8 encodes elements as sign + 1 integer bit + 6 fraction bits with an
implicit factor of ``2**-6``; ``e_max = 0`` in Eq. (1), so the shared
exponent is simply the exponent of the BM and the scaled BM is always
``±1.xxxxxx``. The MX+ trick therefore makes the BM's integer bit implicit
and reuses it as one extra fraction bit. The paper also evaluates a
*hypothetical* MXINT4 (1 sign + 1 integer + 2 fraction bits) and MXINT4+.
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import floor_log2, round_half_even
from .scale import E8M0_MAX, E8M0_MIN

__all__ = ["MXIntFormat", "MXIntPlusFormat", "MXINT4", "MXINT4Plus", "MXINT8PlusFormat"]


class MXIntFormat(BlockFormat):
    """Generic MXINT-N: sign + 1 integer bit + ``frac_bits`` fraction bits."""

    def __init__(self, bits: int, block_size: int = 32, name: str | None = None):
        self.bits = bits
        self.frac_bits = bits - 2  # sign + integer bit take two
        self.block_size = block_size
        self.name = name or f"mxint{bits}"

    @property
    def max_code(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def _shared_exp(self, blocks: np.ndarray) -> np.ndarray:
        amax = np.max(np.abs(blocks), axis=-1)
        exp = floor_log2(amax)  # e_max = 0
        exp = np.where(amax == 0, E8M0_MIN, exp)
        return np.clip(exp, E8M0_MIN, E8M0_MAX).astype(np.int32)

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        shared_exp = self._shared_exp(data)
        scale = np.exp2(shared_exp.astype(np.float64))[..., None]
        step = float(1 << self.frac_bits)
        q = np.clip(round_half_even(data / scale * step), -self.max_code, self.max_code)
        return from_blocks(blocked, q / step * scale)

    def bits_per_element(self) -> float:
        return self.bits + 8.0 / self.block_size


class MXIntPlusFormat(MXIntFormat):
    """MXINT-N+: the BM's integer bit becomes an extra fraction bit."""

    def __init__(self, bits: int, block_size: int = 32, name: str | None = None):
        super().__init__(bits, block_size, name or f"mxint{bits}+")

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        absd = np.abs(data)
        bm_index = np.argmax(absd, axis=-1).astype(np.int64)
        shared_exp = self._shared_exp(data)
        scale = np.exp2(shared_exp.astype(np.float64))[..., None]

        step = float(1 << self.frac_bits)
        q = np.clip(round_half_even(data / scale * step), -self.max_code, self.max_code)
        out = q / step * scale

        # BM: scaled magnitude is in [1, 2) -> implicit leading integer bit,
        # frac_bits + 1 stored fraction bits.
        bm_signed = np.take_along_axis(data, bm_index[..., None], axis=-1)[..., 0]
        sign = np.where(bm_signed < 0, -1.0, 1.0)
        f = np.abs(bm_signed) / scale[..., 0]
        bm_step = float(1 << (self.frac_bits + 1))
        code = np.clip(round_half_even((f - 1.0) * bm_step), 0, bm_step - 1)
        bm_val = sign * (1.0 + code / bm_step) * scale[..., 0]
        amax = np.max(absd, axis=-1)
        bm_val = np.where(amax == 0, 0.0, bm_val)
        np.put_along_axis(out, bm_index[..., None], bm_val[..., None], axis=-1)
        return from_blocks(blocked, out)

    def bits_per_element(self) -> float:
        return self.bits + 16.0 / self.block_size


def MXINT4() -> MXIntFormat:
    return MXIntFormat(4, name="mxint4")


def MXINT4Plus() -> MXIntPlusFormat:
    return MXIntPlusFormat(4, name="mxint4+")


def MXINT8PlusFormat() -> MXIntPlusFormat:
    return MXIntPlusFormat(8, name="mxint8+")
