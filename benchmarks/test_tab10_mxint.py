"""Table 10: the MX+ idea on non-FP microscaling formats — MXINT8(+) and
the hypothetical MXINT4(+)."""

from _util import print_table, run_once, save_result

from repro.eval import perplexity_table

FORMATS = ["baseline", "mxint8+", "mxint8", "mxint4+", "mxint4"]
MODELS = ["llama-3.1-8b-sim", "mistral-7b-sim"]


def test_tab10(benchmark, zoo, wiki2):
    def run():
        return {m: perplexity_table(zoo[m], wiki2, FORMATS) for m in MODELS}

    table = run_once(benchmark, run)
    save_result("tab10_mxint", table)
    for m in MODELS:
        print_table(f"Table 10 ({m})", table[m])

    for m in MODELS:
        row = table[m]
        # MXINT8: the extra fraction bit barely matters (already 6 bits).
        assert abs(row["mxint8+"] - row["mxint8"]) / row["mxint8"] < 0.05
        # MXINT4: the extra fraction bit never hurts (tensor-level error is
        # strictly lower; model-level perplexity may wobble within noise).
        assert row["mxint4+"] <= row["mxint4"] * 1.02
        # And 4-bit INT degrades much more than 8-bit.
        assert row["mxint4"] > row["mxint8"]
    # ...and on at least one model the MXINT4+ gain is clearly visible.
    assert any(table[m]["mxint4+"] < table[m]["mxint4"] * 0.995 for m in MODELS)
